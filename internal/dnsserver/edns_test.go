package dnsserver

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/resolver"
)

// TestEDNSLiftsTruncation verifies RFC 6891 behaviour over real UDP: a
// response exceeding 512 bytes is truncated for plain queries but
// delivered whole when the client advertises a larger payload size.
func TestEDNSLiftsTruncation(t *testing.T) {
	h := NewHostingHandler(60)
	// 40 A records ≈ 40×(compressed name ~2 + 14) + overhead > 512 bytes.
	var addrs []netip.Addr
	for i := 0; i < 40; i++ {
		addrs = append(addrs, netip.MustParseAddr(fmt.Sprintf("104.16.%d.%d", i/250, i%250+1)))
	}
	h.Set("big.com", addrs...)
	addr, stop := startServer(t, h)
	defer stop()

	ex := &resolver.UDPExchanger{Addr: addr, Timeout: 2 * time.Second, Retries: 2}

	plain := dnsmsg.NewQuery(7, "big.com", dnsmsg.TypeA)
	resp, err := ex.Exchange(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated {
		t.Fatalf("plain UDP response not truncated: %d answers", len(resp.Answers))
	}

	edns := dnsmsg.NewQuery(8, "big.com", dnsmsg.TypeA)
	edns.SetEDNS0(dnsmsg.DefaultEDNSSize)
	resp, err = ex.Exchange(context.Background(), edns)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated {
		t.Fatal("EDNS response still truncated")
	}
	if len(resp.Answers) != 40 {
		t.Fatalf("EDNS answers = %d, want 40", len(resp.Answers))
	}
}
