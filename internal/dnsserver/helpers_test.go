package dnsserver

import (
	"io"
	"net"
)

// Small indirection helpers keep the main test file free of conditional
// imports.

func netDialTCP(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
func netDialUDP(addr string) (net.Conn, error) { return net.Dial("udp", addr) }
func ioReadFull(r io.Reader, b []byte) (int, error) {
	return io.ReadFull(r, b)
}
