package dnsserver

import (
	"context"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/registry"
	"darkdns/internal/resolver"
	"darkdns/internal/simclock"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func startServer(t *testing.T, h Handler) (string, func()) {
	t.Helper()
	srv := New(h)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr.String(), func() { srv.Close() }
}

func udpQuery(t *testing.T, addr, name string, typ dnsmsg.Type) *dnsmsg.Message {
	t.Helper()
	ex := &resolver.UDPExchanger{Addr: addr, Timeout: 2 * time.Second, Retries: 2}
	resp, err := ex.Exchange(context.Background(), dnsmsg.NewQuery(42, name, typ))
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	return resp
}

func TestTLDHandlerOverUDP(t *testing.T) {
	clk := simclock.NewSim(t0)
	reg := registry.New(registry.DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()
	reg.Register("example.com", "R", []string{"ns1.cloudflare.com", "ns2.cloudflare.com"}, netip.Addr{})
	clk.Advance(time.Minute)

	addr, stop := startServer(t, &TLDHandler{Registry: reg})
	defer stop()

	resp := udpQuery(t, addr, "example.com", dnsmsg.TypeNS)
	if resp.Header.RCode != dnsmsg.RCodeNoError || len(resp.Answers) != 2 {
		t.Fatalf("NS answer: %+v", resp)
	}
	if !resp.Header.Authoritative {
		t.Error("TLD NS answer should be authoritative")
	}

	resp = udpQuery(t, addr, "missing.com", dnsmsg.TypeNS)
	if resp.Header.RCode != dnsmsg.RCodeNXDomain {
		t.Fatalf("want NXDOMAIN, got %v", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnsmsg.TypeSOA {
		t.Error("NXDOMAIN should carry SOA in authority")
	}

	resp = udpQuery(t, addr, "example.org", dnsmsg.TypeNS)
	if resp.Header.RCode != dnsmsg.RCodeRefused {
		t.Errorf("out-of-zone query: %v", resp.Header.RCode)
	}

	resp = udpQuery(t, addr, "com", dnsmsg.TypeSOA)
	if len(resp.Answers) != 1 || resp.Answers[0].SOA.Serial != reg.Serial() {
		t.Errorf("SOA: %+v", resp.Answers)
	}
}

func TestTLDHandlerReferralForAQuery(t *testing.T) {
	clk := simclock.NewSim(t0)
	reg := registry.New(registry.DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()
	reg.Register("example.com", "R", []string{"ns1.cloudflare.com"}, netip.Addr{})
	clk.Advance(time.Minute)
	addr, stop := startServer(t, &TLDHandler{Registry: reg})
	defer stop()

	resp := udpQuery(t, addr, "example.com", dnsmsg.TypeA)
	if len(resp.Answers) != 0 || len(resp.Authority) != 1 {
		t.Errorf("referral shape: %+v", resp)
	}
	if resp.Header.Authoritative {
		t.Error("referral must not be authoritative")
	}
}

func TestHostingHandler(t *testing.T) {
	h := NewHostingHandler(30)
	h.Set("example.com", netip.MustParseAddr("104.16.1.1"), netip.MustParseAddr("2606:4700::1"))
	addr, stop := startServer(t, h)
	defer stop()

	resp := udpQuery(t, addr, "example.com", dnsmsg.TypeA)
	if len(resp.Answers) != 1 || resp.Answers[0].A.String() != "104.16.1.1" {
		t.Errorf("A: %+v", resp.Answers)
	}
	resp = udpQuery(t, addr, "example.com", dnsmsg.TypeAAAA)
	if len(resp.Answers) != 1 || resp.Answers[0].AAAA.String() != "2606:4700::1" {
		t.Errorf("AAAA: %+v", resp.Answers)
	}
	h.Remove("example.com")
	resp = udpQuery(t, addr, "example.com", dnsmsg.TypeA)
	if resp.Header.RCode != dnsmsg.RCodeNXDomain {
		t.Errorf("after Remove: %v", resp.Header.RCode)
	}
}

func TestResolverCachingAgainstLiveServer(t *testing.T) {
	h := NewHostingHandler(300)
	h.Set("cached.com", netip.MustParseAddr("192.0.2.1"))
	addr, stop := startServer(t, h)
	defer stop()

	clk := simclock.NewSim(t0)
	ex := &resolver.UDPExchanger{Addr: addr, Timeout: 2 * time.Second, Retries: 2}
	res := resolver.New(resolver.Config{MaxTTL: 60 * time.Second}, clk, ex, rand.New(rand.NewSource(7)))

	if _, err := res.Lookup(context.Background(), "cached.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Lookup(context.Background(), "cached.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	hits, misses := res.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	// The 60 s clamp must beat the record's 300 s TTL.
	clk.Advance(61 * time.Second)
	if _, err := res.Lookup(context.Background(), "cached.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	if _, misses := res.Stats(); misses != 2 {
		t.Errorf("misses = %d after clamp expiry, want 2", misses)
	}
}

func TestResolverNegativeCache(t *testing.T) {
	h := NewHostingHandler(30)
	addr, stop := startServer(t, h)
	defer stop()
	clk := simclock.NewSim(t0)
	ex := &resolver.UDPExchanger{Addr: addr, Timeout: 2 * time.Second, Retries: 2}
	res := resolver.New(resolver.Config{NegTTL: 60 * time.Second}, clk, ex, nil)

	if _, err := res.Lookup(context.Background(), "ghost.com", dnsmsg.TypeA); err != resolver.ErrNXDomain {
		t.Fatalf("want ErrNXDomain, got %v", err)
	}
	// Now the name appears; the negative cache must mask it until expiry.
	h.Set("ghost.com", netip.MustParseAddr("192.0.2.9"))
	if _, err := res.Lookup(context.Background(), "ghost.com", dnsmsg.TypeA); err != resolver.ErrNXDomain {
		t.Fatalf("negative cache miss: %v", err)
	}
	clk.Advance(61 * time.Second)
	recs, err := res.Lookup(context.Background(), "ghost.com", dnsmsg.TypeA)
	if err != nil || len(recs) != 1 {
		t.Fatalf("after negative expiry: %v, %v", recs, err)
	}
}

func TestTCPTransport(t *testing.T) {
	h := NewHostingHandler(30)
	h.Set("tcp.com", netip.MustParseAddr("192.0.2.2"))
	addr, stop := startServer(t, h)
	defer stop()

	// Minimal TCP client: 2-byte length prefix framing.
	conn, err := netDialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnsmsg.NewQuery(7, "tcp.com", dnsmsg.TypeA)
	wire, _ := q.Pack()
	framed := append([]byte{byte(len(wire) >> 8), byte(len(wire))}, wire...)
	if _, err := conn.Write(framed); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	head := make([]byte, 2)
	if _, err := ioReadFull(conn, head); err != nil {
		t.Fatal(err)
	}
	n := int(head[0])<<8 | int(head[1])
	body := make([]byte, n)
	if _, err := ioReadFull(conn, body); err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Unpack(body)
	if err != nil || len(resp.Answers) != 1 {
		t.Fatalf("TCP response: %+v, %v", resp, err)
	}
}

func TestGarbageDatagramsIgnored(t *testing.T) {
	h := NewHostingHandler(30)
	h.Set("up.com", netip.MustParseAddr("192.0.2.3"))
	addr, stop := startServer(t, h)
	defer stop()
	// Hurl garbage, then confirm the server still answers.
	conn, err := netDialUDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0xde, 0xad})
	conn.Close()
	resp := udpQuery(t, addr, "up.com", dnsmsg.TypeA)
	if len(resp.Answers) != 1 {
		t.Error("server wedged by garbage datagram")
	}
}

func TestCloseIdempotent(t *testing.T) {
	srv := New(NewHostingHandler(30))
	if _, err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
