// Root benchmark harness: one benchmark per table and figure of the
// paper's evaluation (DESIGN.md §4 experiment index E1–E12), plus
// end-to-end campaign and pipeline-ingest benchmarks, and the ablation
// benches DESIGN.md §5 calls out live next to their packages
// (zoneset: streaming vs materialized diff; stream: batch vs per-message).
//
// Run with:
//
//	go test -bench=. -benchmem
package darkdns

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darkdns/internal/analysis"
	"darkdns/internal/certstream"
	"darkdns/internal/core"
	"darkdns/internal/ct"
	"darkdns/internal/czds"
	"darkdns/internal/dnsname"
	"darkdns/internal/feed"
	"darkdns/internal/measure"
	"darkdns/internal/psl"
	"darkdns/internal/rdap"
	"darkdns/internal/simclock"
	"darkdns/internal/stream"
	"darkdns/internal/worldsim"
)

// benchResults is the shared campaign every per-table benchmark analyzes.
// Building it once keeps `go test -bench=.` runtimes sane while still
// measuring each experiment's analysis cost.
var (
	benchOnce sync.Once
	benchRes  *analysis.Results
)

func sharedResults(b *testing.B) *analysis.Results {
	b.Helper()
	benchOnce.Do(func() {
		benchRes = analysis.Run(analysis.RunConfig{Seed: 2024, Scale: 0.003, Weeks: 5, WatchSampleRate: 1.0, ProbeMail: true})
	})
	return benchRes
}

// BenchmarkFullCampaign measures the complete simulation + pipeline for a
// small world: the end-to-end cost of regenerating the entire evaluation.
func BenchmarkFullCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := analysis.Run(analysis.RunConfig{Seed: int64(i + 1), Scale: 0.0005, Weeks: 2, WatchSampleRate: 1.0})
		if res.Pipeline.Len() == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkTable1NRDs regenerates Table 1 (E1).
func BenchmarkTable1NRDs(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table1(res)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		_ = analysis.RenderTable1(rows)
	}
}

// BenchmarkFigure1DetectionDelay regenerates Figure 1 (E2).
func BenchmarkFigure1DetectionDelay(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets, series := analysis.Figure1(res)
		if len(series) == 0 || len(buckets) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkNSStability regenerates the §4.1 NS-stability statistic (E3).
func BenchmarkNSStability(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, total := analysis.NSStability(res); total == 0 {
			b.Fatal("no watched domains")
		}
	}
}

// BenchmarkTable2Transients regenerates Table 2 (E4).
func BenchmarkTable2Transients(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table2(res)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		_ = analysis.RenderTable2(rows)
	}
}

// BenchmarkRDAPFailureStats regenerates the §4.2 failure accounting (E5).
func BenchmarkRDAPFailureStats(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := analysis.RDAPFailureStats(res)
		if s.NRDTotal == 0 {
			b.Fatal("empty stats")
		}
	}
}

// BenchmarkFigure2Lifetimes regenerates Figure 2 (E6).
func BenchmarkFigure2Lifetimes(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, cdf := analysis.Figure2(res)
		if cdf.Len() == 0 {
			b.Fatal("no lifetimes")
		}
	}
}

// BenchmarkTable3Registrars regenerates Table 3 (E7).
func BenchmarkTable3Registrars(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := analysis.Table3(res); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable4DNSHosting regenerates Table 4 (E8).
func BenchmarkTable4DNSHosting(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := analysis.Table4(res); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable5WebHosting regenerates Table 5 (E9).
func BenchmarkTable5WebHosting(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := analysis.Table5(res); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkBlocklistCoverage regenerates the §4.3 statistics (E10).
func BenchmarkBlocklistCoverage(b *testing.B) {
	res := sharedResults(b)
	pollEnd := res.WindowEnd.Add(90 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		early, _ := analysis.BlocklistCoverage(res, pollEnd)
		if early.Population == 0 {
			b.Fatal("no population")
		}
	}
}

// BenchmarkNODComparison regenerates the §4.4 feed comparison (E11).
func BenchmarkNODComparison(b *testing.B) {
	res := sharedResults(b)
	day := res.WindowStart.Add(14 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp := analysis.CompareNOD(res, day)
		if cmp.Both+cmp.CTOnly == 0 {
			b.Fatal("degenerate comparison")
		}
	}
}

// BenchmarkCCTLDGroundTruth regenerates the §4.4 .nl experiment (E12).
func BenchmarkCCTLDGroundTruth(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc := analysis.CCTLDGroundTruth(res)
		if cc.FastDeleted == 0 {
			b.Fatal("no ground truth")
		}
	}
}

// BenchmarkRZUWhatIf computes the §5 rapid-zone-update extension (X1).
func BenchmarkRZUWhatIf(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.RZUWhatIf(res, 5*time.Minute)
		if r.FastDeleted == 0 {
			b.Fatal("no population")
		}
	}
}

// BenchmarkMailStats computes the §5 mail-adoption extension (X2).
func BenchmarkMailStats(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := analysis.MailStats(res)
		if m.NormalTotal == 0 {
			b.Fatal("no population")
		}
	}
}

// benchPipeline assembles an ingest-only pipeline (no RDAP delay, no
// fleet, no feed) plus a cyclic corpus of pre-built events. The corpus is
// larger than the pipeline's shard count so steady-state iterations
// spread across every stripe: after the first cycle admits each name,
// every further event exercises the full screen path (PSL extraction,
// name hygiene, duplicate probe, lock-free zone filter).
func benchPipeline(workers int) (*core.Pipeline, []certstream.Event) {
	clk := simclock.NewSim(time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC))
	zones := czds.New()
	cfg := core.DefaultConfig(clk.Now(), clk.Now().Add(91*24*time.Hour))
	cfg.RDAPDelay = nil
	cfg.IngestWorkers = workers
	p := core.New(cfg, clk, psl.Default(), zones, nullQuerier{}, nil, nil, 1)
	evs := make([]certstream.Event, 512)
	for i := range evs {
		evs[i] = certstream.Event{
			Seen: clk.Now(), Log: "bench",
			Entry: ct.Entry{Kind: ct.PreCertificate, CN: "www." + benchName(i) + ".shop"},
		}
	}
	return p, evs
}

// BenchmarkPipelineIngest measures step 1 throughput on the serial
// per-event path: certstream events through PSL extraction and the zone
// filter, one at a time. This is the baseline the batch and parallel
// benchmarks are compared against (acceptance: ≥2× on ≥4 cores).
func BenchmarkPipelineIngest(b *testing.B) {
	p, evs := benchPipeline(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.HandleEvent(evs[i%len(evs)])
	}
}

// BenchmarkPipelineIngestBatch measures HandleBatch throughput with the
// screening worker pool sized to the machine: one op is one event, fed in
// batches of 256.
func BenchmarkPipelineIngestBatch(b *testing.B) {
	p, evs := benchPipeline(runtime.GOMAXPROCS(0))
	const batch = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		lo := i % len(evs)
		hi := lo + batch
		if hi > len(evs) {
			hi = len(evs)
		}
		p.HandleBatch(evs[lo:hi])
	}
}

// BenchmarkPipelineIngestParallel measures concurrent per-event ingest:
// GOMAXPROCS goroutines call HandleEvent simultaneously against the
// sharded candidate store and the lock-free zone view.
func BenchmarkPipelineIngestParallel(b *testing.B) {
	p, evs := benchPipeline(0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			p.HandleEvent(evs[i%len(evs)])
			i++
		}
	})
}

// rdapWorkQuerier simulates one registry lookup with a fixed slab of CPU
// work per query (jCard rendering and parsing in a network deployment),
// so the dispatch benchmarks expose worker-pool scaling rather than
// map-lookup noise.
type rdapWorkQuerier struct{}

func (rdapWorkQuerier) Domain(_ context.Context, name string) (*rdap.Record, error) {
	h := dnsname.Hash64(name)
	for i := 0; i < 8192; i++ {
		h = (h ^ uint64(i)) * 0x100000001b3
	}
	if h == 0 { // never true; defeats dead-code elimination
		return nil, rdap.ErrNotFound
	}
	return &rdap.Record{Domain: name, Registrar: "bench", Registered: time.Unix(int64(h%1e6), 0)}, nil
}

// benchRDAPNames builds a corpus spread over several TLD queues.
func benchRDAPNames() []string {
	tlds := []string{"shop", "com", "net", "org"}
	names := make([]string, 512)
	for i := range names {
		names[i] = benchName(i) + "." + tlds[i%len(tlds)]
	}
	return names
}

// BenchmarkRDAPDispatchSerial is the PR 1 baseline: step 2 as blocking
// per-candidate lookups on the calling goroutine, no queues, no pool.
func BenchmarkRDAPDispatchSerial(b *testing.B) {
	q := rdapWorkQuerier{}
	names := benchRDAPNames()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Domain(ctx, names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRDAPDispatchParallel measures the asynchronous dispatch
// engine end to end under the real clock: DomainBatch enqueues fan out
// into per-TLD queues drained by a machine-width worker pool, and one op
// is one completed query (the batch completion barrier is part of the
// measured cost, as it is in the pipeline).
func BenchmarkRDAPDispatchParallel(b *testing.B) {
	d := rdap.NewDispatcher(rdap.DispatcherConfig{Workers: runtime.GOMAXPROCS(0)},
		simclock.Real{}, rdapWorkQuerier{})
	names := benchRDAPNames()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(names) {
		n := len(names)
		if rem := b.N - i; rem < n {
			n = rem
		}
		var wg sync.WaitGroup
		wg.Add(n)
		batch := make(rdap.DomainBatch, n)
		for j := 0; j < n; j++ {
			batch[j] = rdap.Query{Domain: names[j], Done: func(*rdap.Record, error) { wg.Done() }}
		}
		d.EnqueueBatch(batch)
		wg.Wait()
	}
}

// benchSimTimeline loads a Sim with n events spread over 1000 distinct
// instants (heavy same-timestamp collision, the shape batch firing
// exploits), each carrying a small slab of CPU work. Parallel-marked so
// the batched drain can actually pool them.
func benchSimTimeline(s *simclock.Sim, n int, sink *[1]uint64) {
	for i := 0; i < n; i++ {
		i := i
		s.AfterPar(time.Duration(i%1000)*time.Second, func() {
			h := uint64(i)
			for k := 0; k < 512; k++ {
				h = (h ^ uint64(k)) * 0x100000001b3
			}
			if h == 0 {
				sink[0]++ // defeats dead-code elimination; never taken
			}
		})
	}
}

// BenchmarkSimSerialRun is the event-loop baseline: one callback per
// pop on the timer-wheel engine's serial drain. One op = one event.
func BenchmarkSimSerialRun(b *testing.B) {
	var sink [1]uint64
	s := simclock.NewSim(time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC))
	benchSimTimeline(s, b.N, &sink)
	b.ResetTimer()
	if s.Run() != b.N {
		b.Fatal("lost events")
	}
}

// BenchmarkSimBatchedRun measures the batch-firing drain: groups of
// same-timestamp parallel events fire through a machine-width pool
// behind the completion barrier. One op = one event; the acceptance
// comparison against BenchmarkSimSerialRun tracks event-loop throughput
// in BENCH_ci.json.
func BenchmarkSimBatchedRun(b *testing.B) {
	var sink [1]uint64
	s := simclock.NewSim(time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC))
	benchSimTimeline(s, b.N, &sink)
	b.ResetTimer()
	if s.RunBatched(runtime.GOMAXPROCS(0)) != b.N {
		b.Fatal("lost events")
	}
}

// benchSimTaggedTimeline loads a Sim with n effect-tagged events at n
// distinct instants, one domain atom each — the shape the lookahead
// drain exploits: masks across neighbouring timestamps are (mostly)
// disjoint, so a window of them fires in one pooled round where the
// serial drain takes n rounds. Each event carries the same CPU slab as
// benchSimTimeline.
func benchSimTaggedTimeline(s *simclock.Sim, n int, sink *[1]uint64) {
	base := time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)
	entries := make([]simclock.TaggedTimed, n)
	for i := 0; i < n; i++ {
		i := i
		entries[i] = simclock.TaggedTimed{
			At:  base.Add(time.Duration(i) * time.Second),
			Tag: simclock.DomainTag(benchName(i) + ".shop"),
			Fn: func(time.Time) {
				h := uint64(i)
				for k := 0; k < 512; k++ {
					h = (h ^ uint64(k)) * 0x100000001b3
				}
				if h == 0 {
					sink[0]++ // defeats dead-code elimination; never taken
				}
			},
		}
	}
	s.ScheduleBatchTagged(entries)
}

// BenchmarkLookaheadRun measures the lookahead drain (the seventh
// engine): window=1 exercises the tagged machinery without ever crossing
// timestamps, window=8 pools effect-disjoint events from up to eight
// instants into one concurrent round. One op = one event; the acceptance
// comparison against BenchmarkSimSerialRun tracks what cross-timestamp
// speculation buys on a spread-instant timeline.
func BenchmarkLookaheadRun(b *testing.B) {
	for _, window := range []int{1, 8} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			var sink [1]uint64
			s := simclock.NewSim(time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC))
			benchSimTaggedTimeline(s, b.N, &sink)
			b.ResetTimer()
			if s.RunLookahead(window, runtime.GOMAXPROCS(0)) != b.N {
				b.Fatal("lost events")
			}
		})
	}
}

// benchWorldConfig is a paper-shape (full multi-TLD plan mix) world
// sized so one build lays out ≈10^5 registrations — big enough that the
// compile phase dominates, small enough for bench smoke runs.
func benchWorldConfig(seed int64, buildWorkers, commitWorkers int) worldsim.Config {
	cfg := worldsim.DefaultConfig(seed, 0.02)
	cfg.Weeks = 4
	cfg.BuildWorkers = buildWorkers
	cfg.CommitWorkers = commitWorkers
	return cfg
}

// benchWorldBuild measures the two-phase world builder end to end
// (compile fan-out + commit engine). One op = one world; the
// domains/s metric is what the acceptance comparison tracks —
// BenchmarkWorldBuildParallel must lay out ≥2× the domains per second of
// BenchmarkWorldBuildSerial at 8 workers.
func benchWorldBuild(b *testing.B, buildWorkers, commitWorkers int) {
	b.ReportAllocs()
	domains := 0
	for i := 0; i < b.N; i++ {
		w := worldsim.New(benchWorldConfig(int64(i+1), buildWorkers, commitWorkers))
		domains += w.Domains.Len()
		w.Stop()
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(domains)/secs, "domains/s")
	}
}

// BenchmarkWorldBuildSerial is the baseline: every per-TLD layout
// compiled and committed on the calling goroutine.
func BenchmarkWorldBuildSerial(b *testing.B) { benchWorldBuild(b, 0, 0) }

// BenchmarkWorldBuildParallel compiles per-TLD layouts on a
// machine-width worker pool; the commit engine stays serial, so the
// WorldBuild pair isolates the compile fan-out.
func BenchmarkWorldBuildParallel(b *testing.B) {
	benchWorldBuild(b, runtime.GOMAXPROCS(0), 0)
}

// BenchmarkWorldCommitSerial fixes the compile fan-out at machine width
// and commits serially — the ≈37 %-of-build serial fraction the commit
// engine attacks; against BenchmarkWorldCommitParallel the domains/s
// pair isolates the commit engine the way the WorldBuild pair isolates
// compile. Configuration-identical to BenchmarkWorldBuildParallel by
// design: the commit pair carries its own stable names so the
// BENCH_ci.json comparison reads standalone. (On the single-CPU CI
// runner the two are expected to tie; the speedup claim is the
// serial-fraction accounting in DESIGN.md §9.)
func BenchmarkWorldCommitSerial(b *testing.B) {
	benchWorldBuild(b, runtime.GOMAXPROCS(0), 0)
}

// BenchmarkWorldCommitParallel commits compiled layouts on a
// machine-width pool: sharded Domains installs plus pooled substrate
// seeding, with only ghost-ledger and clock-timeline installs serial.
func BenchmarkWorldCommitParallel(b *testing.B) {
	benchWorldBuild(b, runtime.GOMAXPROCS(0), runtime.GOMAXPROCS(0))
}

// benchLayoutSet compiles the benchmark world's layout set once per
// process; both snapshot benches encode/decode the same set so their
// domains/s metrics share a denominator with the WorldBuild pair.
var (
	benchLayoutOnce sync.Once
	benchLayoutSet  *worldsim.LayoutSet
)

func sharedLayoutSet(b *testing.B) *worldsim.LayoutSet {
	b.Helper()
	benchLayoutOnce.Do(func() {
		benchLayoutSet = worldsim.CompileLayoutSet(benchWorldConfig(1, runtime.GOMAXPROCS(0), 0))
	})
	return benchLayoutSet
}

// BenchmarkSnapshotSave measures the columnar snapshot encoder: one op
// serializes the compiled benchmark world. The layout set is compiled
// once outside the timer; domains/s counts registrations encoded.
func BenchmarkSnapshotSave(b *testing.B) {
	ls := sharedLayoutSet(b)
	runtime.GC() // setup garbage must not bill the first iteration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := worldsim.SaveSnapshot(io.Discard, ls); err != nil {
			b.Fatal(err)
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(ls.Domains()*b.N)/secs, "domains/s")
	}
}

// BenchmarkSnapshotLoad measures the decode path that replaces the
// compile fan-out on a snapshot hit: one op deserializes the benchmark
// world from memory. The acceptance bar is domains/s ≥3× the
// BenchmarkWorldBuildSerial baseline — loading a world must beat
// re-laying it out by a wide margin or snapshots aren't worth the disk.
func BenchmarkSnapshotLoad(b *testing.B) {
	ls := sharedLayoutSet(b)
	var buf bytes.Buffer
	if err := worldsim.SaveSnapshot(&buf, ls); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	runtime.GC() // setup garbage must not bill the first iteration
	b.ReportAllocs()
	b.ResetTimer()
	domains := 0
	for i := 0; i < b.N; i++ {
		got, err := worldsim.LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		domains += got.Domains()
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(domains)/secs, "domains/s")
	}
}

// BenchmarkSweepGrid runs a small seed × policy grid through the sweep
// engine: 2 distinct worlds, 4 cells, each campaign replayed from the
// shared snapshots. One op = one full grid (benchtime=1x friendly — the
// CI smoke run exercises compile-once plus the snapshot fan-out path).
func BenchmarkSweepGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := analysis.Sweep(analysis.SweepConfig{
			Seeds: []int64{1, 2}, Scales: []float64{0.0005}, Weeks: 2,
			Policies: []analysis.SweepPolicy{
				{Name: "paper", ProbeCadence: 10 * time.Minute},
				{Name: "rapid", ProbeCadence: 2 * time.Minute, LookaheadWindow: 8},
			},
			Base:        analysis.RunConfig{WatchSampleRate: 1.0},
			SnapshotDir: b.TempDir(),
			Workers:     2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Cells) != 4 || out.DistinctWorlds != 2 {
			b.Fatalf("grid shape: %d cells, %d worlds", len(out.Cells), out.DistinctWorlds)
		}
	}
}

// staticProbeBackend answers every fleet probe with a fixed delegation.
type staticProbeBackend struct{}

func (staticProbeBackend) AuthoritativeNS(string) ([]string, bool) {
	return []string{"ns1.bench.net"}, true
}
func (staticProbeBackend) LookupA(string) []netip.Addr    { return nil }
func (staticProbeBackend) LookupAAAA(string) []netip.Addr { return nil }

// BenchmarkFleetRoundCoalesced measures the round-coalesced measurement
// fleet: 512 watched domains, one op = one probe executed. The
// events/probe metric is the coalescing acceptance ratio — the per-probe
// scheduler's cost was 1.0 by construction, so ≤0.1 is the ≥10× bar.
func BenchmarkFleetRoundCoalesced(b *testing.B) {
	clk := simclock.NewSim(time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC))
	fleet := measure.NewFleet(measure.DefaultConfig(), clk, staticProbeBackend{})
	// Observations deliver synchronously on the advancing goroutine, so
	// a plain counter tracks probes in O(1) — Report() walks every state
	// ever watched and would skew ns/op with benchtime.
	var probes int64
	fleet.OnObservation(func(measure.Observation) { probes++ })
	const domains = 512
	for i := 0; i < domains; i++ {
		fleet.Watch(benchName(i) + ".shop")
	}
	b.ResetTimer()
	gen := 0
	for probes < int64(b.N) {
		if clk.Pending() == 0 {
			// Every 48-hour window closed: watch a fresh generation so
			// long benchtimes keep measuring steady-state rounds.
			gen++
			for i := 0; i < domains; i++ {
				fleet.Watch(fmt.Sprintf("g%d-%s.shop", gen, benchName(i)))
			}
		}
		clk.Advance(10 * time.Minute)
	}
	b.StopTimer()
	if probes > 0 {
		b.ReportMetric(float64(clk.Stats().Scheduled)/float64(probes), "events/probe")
	}
}

// benchProbeBackend answers every probe with a fixed delegation after a
// small slab of CPU work per domain (wire pack/unpack and answer
// parsing in a network deployment), so the ProbeBatch pair exposes
// batch-slice scaling rather than map-lookup noise.
type benchProbeBackend struct{ sink atomic.Uint64 }

func (p *benchProbeBackend) work(domain string) {
	h := dnsname.Hash64(domain)
	for i := 0; i < 2048; i++ {
		h = (h ^ uint64(i)) * 0x100000001b3
	}
	if h == 0 {
		p.sink.Add(1) // never taken; defeats dead-code elimination
	}
}

func (p *benchProbeBackend) AuthoritativeNS(domain string) ([]string, bool) {
	p.work(domain)
	return []string{"ns1.bench.net"}, true
}
func (p *benchProbeBackend) LookupA(string) []netip.Addr    { return nil }
func (p *benchProbeBackend) LookupAAAA(string) []netip.Addr { return nil }

func (p *benchProbeBackend) ProbeBatch(domains []string, mail bool) []measure.ProbeResult {
	out := make([]measure.ProbeResult, len(domains))
	for i, d := range domains {
		out[i].NS, out[i].InZone = p.AuthoritativeNS(d)
	}
	return out
}

// benchProbeBatch measures the probe engine through full fleet rounds:
// 512 watched domains, one op = one probe executed, with the probes/s
// metric the BENCH_ci.json acceptance comparison tracks. probeWorkers
// selects the engine mode — 0 is the per-domain serial baseline, ≥1
// partitions each round into that many batch slices (DESIGN.md §10).
func benchProbeBatch(b *testing.B, probeWorkers int) {
	clk := simclock.NewSim(time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC))
	cfg := measure.DefaultConfig()
	cfg.ProbeWorkers = probeWorkers
	fleet := measure.NewFleet(cfg, clk, &benchProbeBackend{})
	var probes int64
	fleet.OnObservation(func(measure.Observation) { probes++ })
	const domains = 512
	for i := 0; i < domains; i++ {
		fleet.Watch(benchName(i) + ".shop")
	}
	b.ResetTimer()
	gen := 0
	for probes < int64(b.N) {
		if clk.Pending() == 0 {
			gen++
			for i := 0; i < domains; i++ {
				fleet.Watch(fmt.Sprintf("g%d-%s.shop", gen, benchName(i)))
			}
		}
		clk.Advance(10 * time.Minute)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(probes)/secs, "probes/s")
	}
}

// BenchmarkProbeBatchSerial is the probe engine's baseline: per-domain
// backend calls on the fleet pool, no batching.
func BenchmarkProbeBatchSerial(b *testing.B) { benchProbeBatch(b, 0) }

// BenchmarkProbeBatchParallel submits each round as machine-width batch
// slices through the BatchBackend path; against BenchmarkProbeBatchSerial
// the probes/s pair tracks the sixth engine's trajectory in BENCH_ci.json.
func BenchmarkProbeBatchParallel(b *testing.B) {
	benchProbeBatch(b, runtime.GOMAXPROCS(0))
}

// benchApplyBackend is benchProbeBackend with a quarter of the CPU slab:
// light enough that stage 2 — state apply + observer delivery — is a
// visible fraction of each round, so the RoundApply pair exposes the
// apply engine's fan-out and probe/apply overlap rather than pure
// resolution cost.
type benchApplyBackend struct{ sink atomic.Uint64 }

func (p *benchApplyBackend) work(domain string) {
	h := dnsname.Hash64(domain)
	for i := 0; i < 512; i++ {
		h = (h ^ uint64(i)) * 0x100000001b3
	}
	if h == 0 {
		p.sink.Add(1) // never taken; defeats dead-code elimination
	}
}

func (p *benchApplyBackend) AuthoritativeNS(domain string) ([]string, bool) {
	p.work(domain)
	return []string{"ns1.bench.net"}, true
}
func (p *benchApplyBackend) LookupA(string) []netip.Addr    { return nil }
func (p *benchApplyBackend) LookupAAAA(string) []netip.Addr { return nil }

func (p *benchApplyBackend) ProbeBatch(domains []string, mail bool) []measure.ProbeResult {
	out := make([]measure.ProbeResult, len(domains))
	for i, d := range domains {
		out[i].NS, out[i].InZone = p.AuthoritativeNS(d)
	}
	return out
}

// benchRoundApply measures the apply engine through full fleet rounds:
// 512 watched domains, one op = one probe applied and delivered. Both
// variants run machine-width probe slices so stage 1 is identical; only
// the stage-2 mode differs — inline serial apply (applyWorkers=0) vs the
// fan-out + reorder-buffer pipeline (DESIGN.md §14). applies/s and
// rounds/s are the BENCH_ci.json acceptance pair.
func benchRoundApply(b *testing.B, applyWorkers int) {
	clk := simclock.NewSim(time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC))
	cfg := measure.DefaultConfig()
	cfg.ProbeWorkers = runtime.GOMAXPROCS(0)
	cfg.ApplyWorkers = applyWorkers
	fleet := measure.NewFleet(cfg, clk, &benchApplyBackend{})
	var applied int64
	fleet.OnObservation(func(measure.Observation) { applied++ })
	const domains = 512
	for i := 0; i < domains; i++ {
		fleet.Watch(benchName(i) + ".shop")
	}
	b.ResetTimer()
	gen := 0
	for applied < int64(b.N) {
		if clk.Pending() == 0 {
			gen++
			for i := 0; i < domains; i++ {
				fleet.Watch(fmt.Sprintf("g%d-%s.shop", gen, benchName(i)))
			}
		}
		clk.Advance(10 * time.Minute)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(applied)/secs, "applies/s")
		b.ReportMetric(float64(fleet.Report().Rounds)/secs, "rounds/s")
	}
}

// BenchmarkRoundApplySerial is the apply engine's baseline: stage 2
// applies state and delivers observations inline in admission order.
func BenchmarkRoundApplySerial(b *testing.B) { benchRoundApply(b, 0) }

// BenchmarkRoundApplyParallel fans applies across a machine-width pool
// behind the sequencing reorder buffer; against BenchmarkRoundApplySerial
// the applies/s pair tracks the apply engine's trajectory in BENCH_ci.json.
func BenchmarkRoundApplyParallel(b *testing.B) {
	benchRoundApply(b, runtime.GOMAXPROCS(0))
}

// benchFeedFanout measures the pub/sub feed tier end to end: one op is
// one entry published to the topic, with every subscriber connected over
// real TCP at offset 0 before the timer starts. The entries/s metric is
// total deliveries (publishes × subscribers) per second — the fan-out
// throughput BENCH_ci.json tracks across the 1/8/64 subscriber ladder.
func benchFeedFanout(b *testing.B, subs int) feed.FanoutStats {
	bus := stream.NewBus()
	topic := bus.Topic("bench-feed")
	// A deep queue keeps the benchmark shed-free so every subscriber
	// terminates on delivery of the final offset rather than a gap.
	srv := feed.NewServerConfig(topic, feed.ServerConfig{QueueBound: 1 << 16, BatchMax: 512})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	final := int64(b.N - 1)
	var wg sync.WaitGroup
	var delivered atomic.Int64
	for s := 0; s < subs; s++ {
		sub, err := feed.NewClient(addr.String()).Subscribe(ctx, feed.SubscribeOptions{From: 0, Buffer: 4096})
		if err != nil {
			b.Fatal(err)
		}
		defer sub.Close()
		wg.Add(1)
		go func(sub *feed.Subscription) {
			defer wg.Done()
			for ev := range sub.C {
				switch ev.Kind {
				case feed.EventEntry:
					delivered.Add(1)
					if ev.Entry.Offset == final {
						return
					}
				case feed.EventGap:
					if ev.Gap.To >= final {
						return
					}
				}
			}
		}(sub)
	}

	when := time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topic.Publish(when, benchName(i)+".shop", nil)
	}
	wg.Wait()
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(delivered.Load())/secs, "entries/s")
	}
	return srv.Stats()
}

// BenchmarkFeedFanout runs the fan-out ladder the feed tier's acceptance
// tracks: identical publish load delivered to 1, 8, and 64 concurrent
// framed subscribers.
func BenchmarkFeedFanout(b *testing.B) {
	for _, subs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			benchFeedFanout(b, subs)
		})
	}
}

// BenchmarkFeedFanoutCachedEncode measures the pump-warmed shared encode
// cache on the fan-out shape that motivates it: every subscriber replays
// the identical entry stream, so after the pump's first marshal of each
// offset, every per-subscriber DATA write is a frozen-bytes copy. The
// hits/op metric is encode-cache hits per published entry (≈ subscriber
// count while the cache holds the live window).
func BenchmarkFeedFanoutCachedEncode(b *testing.B) {
	st := benchFeedFanout(b, 8)
	b.ReportMetric(float64(st.EncodeCacheHits)/float64(b.N), "hits/op")
}

func benchName(i int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 8)
	for p := range b {
		b[p] = alpha[i%26]
		i /= 26
	}
	return string(b)
}
