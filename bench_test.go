// Root benchmark harness: one benchmark per table and figure of the
// paper's evaluation (DESIGN.md §4 experiment index E1–E12), plus
// end-to-end campaign and pipeline-ingest benchmarks, and the ablation
// benches DESIGN.md §5 calls out live next to their packages
// (zoneset: streaming vs materialized diff; stream: batch vs per-message).
//
// Run with:
//
//	go test -bench=. -benchmem
package darkdns

import (
	"sync"
	"testing"
	"time"

	"darkdns/internal/analysis"
	"darkdns/internal/certstream"
	"darkdns/internal/core"
	"darkdns/internal/ct"
	"darkdns/internal/czds"
	"darkdns/internal/psl"
	"darkdns/internal/simclock"
)

// benchResults is the shared campaign every per-table benchmark analyzes.
// Building it once keeps `go test -bench=.` runtimes sane while still
// measuring each experiment's analysis cost.
var (
	benchOnce sync.Once
	benchRes  *analysis.Results
)

func sharedResults(b *testing.B) *analysis.Results {
	b.Helper()
	benchOnce.Do(func() {
		benchRes = analysis.Run(analysis.RunConfig{Seed: 2024, Scale: 0.003, Weeks: 5, WatchSampleRate: 1.0, ProbeMail: true})
	})
	return benchRes
}

// BenchmarkFullCampaign measures the complete simulation + pipeline for a
// small world: the end-to-end cost of regenerating the entire evaluation.
func BenchmarkFullCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := analysis.Run(analysis.RunConfig{Seed: int64(i + 1), Scale: 0.0005, Weeks: 2, WatchSampleRate: 1.0})
		if res.Pipeline.Len() == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkTable1NRDs regenerates Table 1 (E1).
func BenchmarkTable1NRDs(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table1(res)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		_ = analysis.RenderTable1(rows)
	}
}

// BenchmarkFigure1DetectionDelay regenerates Figure 1 (E2).
func BenchmarkFigure1DetectionDelay(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets, series := analysis.Figure1(res)
		if len(series) == 0 || len(buckets) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkNSStability regenerates the §4.1 NS-stability statistic (E3).
func BenchmarkNSStability(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, total := analysis.NSStability(res); total == 0 {
			b.Fatal("no watched domains")
		}
	}
}

// BenchmarkTable2Transients regenerates Table 2 (E4).
func BenchmarkTable2Transients(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table2(res)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		_ = analysis.RenderTable2(rows)
	}
}

// BenchmarkRDAPFailureStats regenerates the §4.2 failure accounting (E5).
func BenchmarkRDAPFailureStats(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := analysis.RDAPFailureStats(res)
		if s.NRDTotal == 0 {
			b.Fatal("empty stats")
		}
	}
}

// BenchmarkFigure2Lifetimes regenerates Figure 2 (E6).
func BenchmarkFigure2Lifetimes(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, cdf := analysis.Figure2(res)
		if cdf.Len() == 0 {
			b.Fatal("no lifetimes")
		}
	}
}

// BenchmarkTable3Registrars regenerates Table 3 (E7).
func BenchmarkTable3Registrars(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := analysis.Table3(res); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable4DNSHosting regenerates Table 4 (E8).
func BenchmarkTable4DNSHosting(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := analysis.Table4(res); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable5WebHosting regenerates Table 5 (E9).
func BenchmarkTable5WebHosting(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := analysis.Table5(res); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkBlocklistCoverage regenerates the §4.3 statistics (E10).
func BenchmarkBlocklistCoverage(b *testing.B) {
	res := sharedResults(b)
	pollEnd := res.WindowEnd.Add(90 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		early, _ := analysis.BlocklistCoverage(res, pollEnd)
		if early.Population == 0 {
			b.Fatal("no population")
		}
	}
}

// BenchmarkNODComparison regenerates the §4.4 feed comparison (E11).
func BenchmarkNODComparison(b *testing.B) {
	res := sharedResults(b)
	day := res.WindowStart.Add(14 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp := analysis.CompareNOD(res, day)
		if cmp.Both+cmp.CTOnly == 0 {
			b.Fatal("degenerate comparison")
		}
	}
}

// BenchmarkCCTLDGroundTruth regenerates the §4.4 .nl experiment (E12).
func BenchmarkCCTLDGroundTruth(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc := analysis.CCTLDGroundTruth(res)
		if cc.FastDeleted == 0 {
			b.Fatal("no ground truth")
		}
	}
}

// BenchmarkRZUWhatIf computes the §5 rapid-zone-update extension (X1).
func BenchmarkRZUWhatIf(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.RZUWhatIf(res, 5*time.Minute)
		if r.FastDeleted == 0 {
			b.Fatal("no population")
		}
	}
}

// BenchmarkMailStats computes the §5 mail-adoption extension (X2).
func BenchmarkMailStats(b *testing.B) {
	res := sharedResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := analysis.MailStats(res)
		if m.NormalTotal == 0 {
			b.Fatal("no population")
		}
	}
}

// BenchmarkPipelineIngest measures step 1 throughput: certstream events
// through PSL extraction and the zone filter.
func BenchmarkPipelineIngest(b *testing.B) {
	clk := simclock.NewSim(time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC))
	zones := czds.New()
	cfg := core.DefaultConfig(clk.Now(), clk.Now().Add(91*24*time.Hour))
	cfg.RDAPDelay = nil
	p := core.New(cfg, clk, psl.Default(), zones, nullQuerier{}, nil, nil, 1)
	names := make([]string, 512)
	for i := range names {
		names[i] = "www." + benchName(i) + ".shop"
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.HandleEvent(certstream.Event{
			Seen: clk.Now(), Log: "bench",
			Entry: ct.Entry{Kind: ct.PreCertificate, CN: names[i%len(names)]},
		})
	}
}

func benchName(i int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 8)
	for p := range b {
		b[p] = alpha[i%26]
		i /= 26
	}
	return string(b)
}
