// Command reproduce runs the full DarkDNS measurement campaign against the
// simulated DNS world and regenerates every table and figure of the
// paper's evaluation (IMC 2024), printing them in the paper's layout.
//
// Usage:
//
//	reproduce [-scale 0.005] [-weeks 13] [-seed 1] [-exp all]
//
// Experiments: table1 figure1 nsstability table2 rdapfail figure2 table3
// table4 table5 blocklists nod cctld all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"darkdns/internal/analysis"
	"darkdns/internal/blocklist"
)

func main() {
	scale := flag.Float64("scale", 0.005, "fraction of paper volume to simulate")
	weeks := flag.Int("weeks", 13, "observation window length in weeks (paper: 13)")
	seed := flag.Int64("seed", 1, "world seed (runs are deterministic per seed)")
	watch := flag.Float64("watch-sample", 1.0, "fraction of candidates probed by the fleet")
	ingestWorkers := flag.Int("ingest-workers", 0, "pipeline ingest mode: 0 = per-event, ≥1 = batched with this screening pool width (byte-identical output either way)")
	rdapWorkers := flag.Int("rdap-workers", 0, "RDAP dispatch mode: 0 = serial lookups, ≥1 = async per-TLD queues drained by this worker pool width (byte-identical output either way)")
	clockWorkers := flag.Int("clock-workers", 0, "event engine drain mode: 0 = serial event loop, ≥1 = batch-fire same-timestamp events through this worker pool width (byte-identical output either way)")
	lookaheadWindow := flag.Int("lookahead-window", 0, "optimistic lookahead drain: 0 = off, ≥1 = fire effect-tagged events from up to this many distinct future timestamps per round, disjoint conflict groups in parallel (byte-identical output either way)")
	buildWorkers := flag.Int("build-workers", 0, "world builder compile mode: 0 = serial layout, ≥1 = compile per-TLD layouts on this worker pool width (byte-identical output either way)")
	commitWorkers := flag.Int("commit-workers", 0, "world builder commit mode: 0 = serial install, ≥1 = commit compiled layouts on this worker pool width (byte-identical output either way)")
	probeWorkers := flag.Int("probe-workers", 0, "fleet probe mode: 0 = per-domain calls, ≥1 = submit each round as this many probe batches through the shared exchange layer (byte-identical output either way)")
	probeCadence := flag.Duration("probe-cadence", 0, "fleet revalidation cadence decoupled from TTL (0 = default 10m interval)")
	applyWorkers := flag.Int("apply-workers", 0, "fleet apply mode: 0 = serial state apply + delivery, ≥1 = apply probe results on this many workers behind a sequencing reorder buffer (byte-identical output either way)")
	snapshot := flag.String("snapshot", "", "persistent world snapshot path: a matching snapshot replaces the compile phase, a miss compiles then saves here (byte-identical output either way)")
	exp := flag.String("exp", "all", "experiment to run (table1..table5, figure1, figure2, nsstability, rdapfail, blocklists, nod, cctld, rzu, mail, all)")
	csvDir := flag.String("csv", "", "directory to write figure CSVs for external plotting")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "building world (scale=%g, weeks=%d, seed=%d, build-workers=%d, commit-workers=%d, ingest-workers=%d, rdap-workers=%d, clock-workers=%d, lookahead-window=%d, probe-workers=%d, apply-workers=%d)…\n",
		*scale, *weeks, *seed, *buildWorkers, *commitWorkers, *ingestWorkers, *rdapWorkers, *clockWorkers, *lookaheadWindow, *probeWorkers, *applyWorkers)
	start := time.Now()
	res := analysis.Run(analysis.RunConfig{
		Seed: *seed, Scale: *scale, Weeks: *weeks, WatchSampleRate: *watch, ProbeMail: true,
		IngestWorkers: *ingestWorkers, RDAPWorkers: *rdapWorkers, ClockWorkers: *clockWorkers,
		LookaheadWindow: *lookaheadWindow,
		BuildWorkers:    *buildWorkers, CommitWorkers: *commitWorkers,
		ProbeWorkers: *probeWorkers, ProbeCadence: *probeCadence,
		ApplyWorkers: *applyWorkers,
		SnapshotPath: *snapshot,
	})
	fmt.Fprintf(os.Stderr, "simulation complete in %v: %d candidates, %d transient lower bound\n",
		time.Since(start).Round(time.Millisecond), res.Pipeline.Len(), len(res.Report.LowerBound))
	fr := res.Fleet.Report()
	fmt.Fprintf(os.Stderr, "event engine: %d scheduled, %d fired; fleet coalesced %d probes into %d rounds (max %d wide)\n",
		fr.Engine.Scheduled, fr.Engine.Fired, fr.Probes, fr.Rounds, fr.MaxRound)
	if *applyWorkers > 0 {
		fmt.Fprintf(os.Stderr, "apply engine: %d applies fanned out, %d released in order, %d held for resequencing\n",
			fr.ParallelApplies, fr.ReorderReleases, fr.ReorderHeld)
	}
	if *rdapWorkers > 0 {
		d := fr.Dispatch
		fmt.Fprintf(os.Stderr, "rdap dispatch: %d enqueued, %d completed (%d failed), %d shed over %d TLD queues (max depth %d)\n",
			d.Enqueued, d.Completed, d.Failed, d.Shed, d.TLDs, d.MaxDepth)
	}
	fmt.Fprintln(os.Stderr)

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		fmt.Println(analysis.RenderTable1(analysis.Table1(res)))
	}
	if want("figure1") {
		buckets, series := analysis.Figure1(res)
		fmt.Println(analysis.CDFTable("Figure 1: Difference in registration time per RDAP vs. CT logs (CDF)", buckets, series))
		w15, w45, med := analysis.Figure1Headline(res)
		fmt.Printf("headline: %.0f%% within 15m, %.0f%% within 45m, median %v (paper: ≈30%%, ≈50%%)\n\n",
			100*w15, 100*w45, med.Round(time.Second))
		writeCSV(*csvDir, "figure1.csv", buckets, series)
	}
	if want("nsstability") {
		kept, total := analysis.NSStability(res)
		fmt.Printf("§4.1 NS stability: %d/%d (%s) kept initial NS infrastructure for 24h (paper: 97.5%%)\n\n",
			kept, total, analysis.Pct(kept, total))
	}
	if want("table2") {
		fmt.Println(analysis.RenderTable2(analysis.Table2(res)))
		fmt.Printf("transient share of NRDs: %s (paper: ≈1%%)\n\n",
			analysis.Pct(len(res.Report.LowerBound), res.Pipeline.Len()))
	}
	if want("rdapfail") {
		s := analysis.RDAPFailureStats(res)
		fmt.Printf("§4.2 RDAP failures: NRDs %s (paper ≈3%%); transients %s (paper ≈34%%)\n",
			analysis.Pct(s.NRDFailed, s.NRDTotal), analysis.Pct(s.TransFailed, s.TransTotal))
		fmt.Printf("     RDAP-failed transients with historical zone presence: %s (paper ≈97%%)\n",
			analysis.Pct(s.FailedHistoric, s.TransFailed))
		fmt.Printf("     confirmed transients: %d of %d lower bound (paper: 42,358 of 68,042)\n\n",
			len(res.Report.Confirmed), len(res.Report.LowerBound))
	}
	if want("figure2") {
		buckets, series, cdf := analysis.Figure2(res)
		fmt.Println(analysis.CDFTable("Figure 2: Lifetime of transient domain names (CDF)", buckets, []analysis.Series{series}))
		fmt.Printf("headline: %.0f%% die within 6h (paper: >50%%), median %v, n=%d\n\n",
			100*cdf.At(6*time.Hour), cdf.Quantile(0.5).Round(time.Minute), cdf.Len())
		writeCSV(*csvDir, "figure2.csv", buckets, []analysis.Series{series})
	}
	if want("table3") {
		fmt.Println(analysis.RenderShares("Table 3: Top 10 Transient Domain Registrars", analysis.Table3(res)))
	}
	if want("table4") {
		fmt.Println(analysis.RenderShares("Table 4: Top 5 DNS Hosting (NS record SLDs) of Transient Domains", analysis.Table4(res)))
	}
	if want("table5") {
		fmt.Println(analysis.RenderShares("Table 5: Top 5 Web Hosting (A record ASNs) of Transient Domains", analysis.Table5(res)))
	}
	if want("blocklists") {
		pollEnd := res.WindowEnd.Add(90 * 24 * time.Hour)
		early, trans := analysis.BlocklistCoverage(res, pollEnd)
		fmt.Printf("§4.3 blocklists (polling through %s):\n", pollEnd.Format("2006-01-02"))
		printBlocklistStats("early-removed NRDs", early, "6.6%", "92% active / 3% before / 5% after")
		printBlocklistStats("transient domains", trans, "5%", "5% same-day / 1% before / 94% after")
		fmt.Println()
	}
	if want("nod") {
		day := res.WindowStart.Add(14 * 24 * time.Hour)
		cmp := analysis.CompareNOD(res, day)
		ct := cmp.Both + cmp.CTOnly
		nod := cmp.Both + cmp.NODOnly
		fmt.Printf("§4.4 SIE-NOD comparison (day %s):\n", day.Format("2006-01-02"))
		fmt.Printf("  CT feed: %d   NOD feed: %d (ratio %.2f, paper ≈1.05)\n", ct, nod, ratio(nod, ct))
		fmt.Printf("  overlap: %d (%.0f%% of CT, paper ≈60%%)\n", cmp.Both, 100*ratio(cmp.Both, ct))
		fmt.Printf("  transients: CT %d, NOD %d, both %d, union %d (both/union %.0f%%, paper ≈33%%)\n\n",
			cmp.TransCT, cmp.TransNOD, cmp.TransBoth, cmp.TransUnion, 100*ratio(cmp.TransBoth, cmp.TransUnion))
	}
	if want("cctld") {
		cc := analysis.CCTLDGroundTruth(res)
		fmt.Printf("§4.4 ccTLD (.%s) ground truth:\n", cc.TLD)
		fmt.Printf("  fast-deleted (<24h) in registry ledger: %d (paper: 714)\n", cc.FastDeleted)
		fmt.Printf("  never captured in zone files:           %d (paper: 334)\n", cc.NeverInZone)
		fmt.Printf("  detected by CT pipeline:                %d (paper: 99)\n", cc.PipelineFound)
		fmt.Printf("  recall: %.1f%% (paper: 29.6%%)\n\n", 100*cc.Recall)
	}
	if want("rzu") {
		fmt.Println("§5 extension — rapid zone update what-if (fast-deleted gTLD domains):")
		for _, iv := range []time.Duration{5 * time.Minute, time.Hour, 24 * time.Hour} {
			r := analysis.RZUWhatIf(res, iv)
			fmt.Printf("  %-6s updates: %4d of %4d visible (%s); CT caught %d; RZU-only gain %d\n",
				iv, r.RZUVisible, r.FastDeleted, analysis.Pct(r.RZUVisible, r.FastDeleted),
				r.CTDetected, r.RZUOnlyExtra)
		}
		fmt.Println()
	}
	if want("mail") {
		m := analysis.MailStats(res)
		fmt.Println("§5 extension — mail infrastructure (MX/SPF) adoption:")
		fmt.Printf("  long-lived NRDs: MX %s, SPF %s (n=%d)\n",
			analysis.Pct(m.NormalMX, m.NormalTotal), analysis.Pct(m.NormalSPF, m.NormalTotal), m.NormalTotal)
		fmt.Printf("  transients:      MX %s, SPF %s (n=%d)\n\n",
			analysis.Pct(m.TransientMX, m.TransientTotal), analysis.Pct(m.TransientSPF, m.TransientTotal), m.TransientTotal)
	}
	if *exp != "all" && !knownExp(*exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// writeCSV dumps a figure to dir/name when -csv is set.
func writeCSV(dir, name string, buckets []time.Duration, series []analysis.Series) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	f, err := os.Create(dir + "/" + name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	if err := analysis.WriteFigureCSV(f, buckets, series); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
	}
}

func printBlocklistStats(label string, s analysis.BlocklistStats, paperRate, paperTiming string) {
	fmt.Printf("  %s: %d flagged of %d (%s; paper %s)\n", label, s.Flagged, s.Population,
		analysis.Pct(s.Flagged, s.Population), paperRate)
	if s.Flagged > 0 {
		fmt.Printf("    timing: %d before-reg, %d same-day, %d active, %d post-deletion (paper: %s)\n",
			s.Timing[blocklist.BeforeRegistration], s.Timing[blocklist.OnRegistrationDay],
			s.Timing[blocklist.WhileActive], s.Timing[blocklist.AfterDeletion], paperTiming)
	}
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func knownExp(e string) bool {
	known := "table1 figure1 nsstability table2 rdapfail figure2 table3 table4 table5 blocklists nod cctld rzu mail all"
	for _, k := range strings.Fields(known) {
		if e == k {
			return true
		}
	}
	return false
}
