// Command darkdns runs the DarkDNS pipeline against the simulated DNS
// world and reports the detection inventory: candidates, validation
// outcomes and the transient report. It is the quick operational
// counterpart to cmd/reproduce (which renders the full paper evaluation).
//
// Usage:
//
//	darkdns [-scale 0.002] [-weeks 4] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"darkdns/internal/analysis"
	"darkdns/internal/core"
)

func main() {
	scale := flag.Float64("scale", 0.002, "fraction of paper volume to simulate")
	weeks := flag.Int("weeks", 4, "observation window length in weeks")
	seed := flag.Int64("seed", 1, "world seed")
	ingestWorkers := flag.Int("ingest-workers", 0, "pipeline ingest mode: 0 = per-event, ≥1 = batched with this screening pool width (same results either way)")
	rdapWorkers := flag.Int("rdap-workers", 0, "RDAP dispatch mode: 0 = serial lookups, ≥1 = async per-TLD queues drained by this worker pool width (same results either way)")
	clockWorkers := flag.Int("clock-workers", 0, "event engine drain mode: 0 = serial event loop, ≥1 = batch-fire same-timestamp events through this worker pool width (same results either way)")
	lookaheadWindow := flag.Int("lookahead-window", 0, "optimistic lookahead drain: 0 = off, ≥1 = fire effect-tagged events from up to this many distinct future timestamps per round, disjoint conflict groups in parallel (same results either way)")
	buildWorkers := flag.Int("build-workers", 0, "world builder compile mode: 0 = serial layout, ≥1 = compile per-TLD layouts on this worker pool width (same world either way)")
	commitWorkers := flag.Int("commit-workers", 0, "world builder commit mode: 0 = serial install, ≥1 = commit compiled layouts on this worker pool width (same world either way)")
	probeWorkers := flag.Int("probe-workers", 0, "fleet probe mode: 0 = per-domain calls, ≥1 = submit each round as this many probe batches through the shared exchange layer (same results either way)")
	probeCadence := flag.Duration("probe-cadence", 0, "fleet revalidation cadence decoupled from TTL (0 = default 10m interval)")
	applyWorkers := flag.Int("apply-workers", 0, "fleet apply mode: 0 = serial state apply + delivery, ≥1 = apply probe results on this many workers behind a sequencing reorder buffer (same results either way)")
	snapshot := flag.String("snapshot", "", "persistent world snapshot path: a matching snapshot replaces the compile phase, a miss compiles then saves here (same world either way)")
	verbose := flag.Bool("v", false, "print every confirmed transient domain")
	export := flag.String("export", "", "write candidates to this file in columnar format")
	flag.Parse()

	start := time.Now()
	res := analysis.Run(analysis.RunConfig{
		Seed: *seed, Scale: *scale, Weeks: *weeks, WatchSampleRate: 1.0,
		IngestWorkers: *ingestWorkers, RDAPWorkers: *rdapWorkers, ClockWorkers: *clockWorkers,
		LookaheadWindow: *lookaheadWindow,
		BuildWorkers:    *buildWorkers, CommitWorkers: *commitWorkers,
		ProbeWorkers: *probeWorkers, ProbeCadence: *probeCadence,
		ApplyWorkers: *applyWorkers,
		SnapshotPath: *snapshot,
	})
	fmt.Printf("simulated %d weeks at scale %g in %v\n", *weeks, *scale, time.Since(start).Round(time.Millisecond))

	cands := res.Pipeline.Candidates()
	var byOutcome [5]int
	for _, c := range cands {
		byOutcome[c.RDAPOutcome]++
	}
	fmt.Printf("candidates: %d\n", len(cands))
	fmt.Printf("  rdap ok: %d, not-found: %d, not-synced: %d, error: %d\n",
		byOutcome[core.RDAPOK], byOutcome[core.RDAPNotFound],
		byOutcome[core.RDAPNotSynced], byOutcome[core.RDAPError])

	rep := res.Report
	fmt.Printf("transients: %d lower bound, %d confirmed, %d rdap-failed\n",
		len(rep.LowerBound), len(rep.Confirmed), len(rep.RDAPFailed))

	kept, total := analysis.NSStability(res)
	fmt.Printf("ns stability (24h): %s of %d watched\n", analysis.Pct(kept, total), total)

	fr := res.Fleet.Report()
	fmt.Printf("fleet: %d watched, %d probes, %d ever-in-zone, %d died, %d ns-changed\n",
		fr.Watched, fr.Probes, fr.EverInZone, fr.Died, fr.NSChanged)
	fmt.Printf("clock: %d events scheduled, %d fired over %d probe rounds (max round %d domains)\n",
		fr.Engine.Scheduled, fr.Engine.Fired, fr.Rounds, fr.MaxRound)
	if *clockWorkers > 0 {
		fmt.Printf("  batched drain: %d groups, %d events coalesced, max batch %d\n",
			fr.Engine.Rounds, fr.Engine.Coalesced, fr.Engine.MaxBatch)
	}
	if *lookaheadWindow > 0 {
		fmt.Printf("  lookahead drain: %d windows, %d speculative fires, %d conflicts, %d barrier events\n",
			fr.Engine.Windows, fr.Engine.SpecFired, fr.Engine.Conflicts, fr.Engine.Barriers)
	}
	if *applyWorkers > 0 {
		fmt.Printf("  apply engine: %d applies fanned out, %d released in order, %d held for resequencing\n",
			fr.ParallelApplies, fr.ReorderReleases, fr.ReorderHeld)
	}
	if *rdapWorkers > 0 {
		d := fr.Dispatch
		fmt.Printf("rdap dispatch: %d enqueued, %d completed (%d failed), %d shed; %d TLD queues, max depth %d, avg latency %v\n",
			d.Enqueued, d.Completed, d.Failed, d.Shed, d.TLDs, d.MaxDepth, d.AvgLatency.Round(time.Second))
	}

	if *verbose {
		for _, c := range rep.Confirmed {
			gt := res.World.Domains.Get(c.Domain)
			life := time.Duration(0)
			if gt != nil {
				life = gt.Lifetime
			}
			fmt.Printf("  transient %-28s registrar=%-24s lifetime=%v\n", c.Domain, c.Registrar, life.Round(time.Minute))
		}
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fmt.Fprintln(os.Stderr, "export:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Pipeline.WriteCandidates(f); err != nil {
			fmt.Fprintln(os.Stderr, "export:", err)
			os.Exit(1)
		}
		fmt.Printf("exported %d candidates to %s (columnar)\n", len(cands), *export)
	}
}
