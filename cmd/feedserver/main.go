// Command feedserver exposes the public newly-registered-domain feed
// (the paper's released zonestream service): it runs a simulated world in
// real time, pipes the DarkDNS pipeline's detections into a topic, and
// serves that topic over TCP as JSON lines.
//
// Connect with:
//
//	nc localhost 7543
//	LIVE            (or: FROM 0 to replay from the beginning)
//
// Usage:
//
//	feedserver [-listen 127.0.0.1:7543] [-scale 0.0005] [-tick 500ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"darkdns/internal/core"
	"darkdns/internal/feed"
	"darkdns/internal/measure"
	"darkdns/internal/psl"
	"darkdns/internal/stream"
	"darkdns/internal/worldsim"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7543", "feed listen address")
	scale := flag.Float64("scale", 0.0005, "fraction of paper volume to simulate")
	tick := flag.Duration("tick", 500*time.Millisecond, "wall-clock interval per simulated hour")
	seed := flag.Int64("seed", 1, "world seed")
	ingestWorkers := flag.Int("ingest-workers", 0, "pipeline ingest mode: 0 = per-event, ≥1 = micro-batched with this screening pool width")
	flag.Parse()

	w := worldsim.New(worldsim.DefaultConfig(*seed, *scale))
	start, end := w.Window()
	bus := stream.NewBus()
	fleetCfg := measure.DefaultConfig()
	fleetCfg.StopWhenDead = true
	fleet := measure.NewFleet(fleetCfg, w.Clock, w.ProbeBackend())
	pcfg := core.DefaultConfig(start, end)
	pcfg.IngestWorkers = *ingestWorkers
	p := core.New(pcfg, w.Clock, psl.Default(), w.CZDS,
		core.MuxQuerier{Mux: w.RDAP}, fleet, bus, *seed+100)
	if *ingestWorkers > 0 {
		p.StartBatched(w.Hub)
	} else {
		p.Start(w.Hub)
	}

	srv := feed.NewServer(bus.Topic("nrd-feed"))
	addr, err := srv.Serve(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "feedserver:", err)
		os.Exit(1)
	}
	fmt.Printf("feed listening on %s (send LIVE or FROM <offset>)\n", addr)
	fmt.Printf("simulating %s → %s, one hour per %v\n", start.Format("2006-01-02"), end.Format("2006-01-02"), *tick)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.Clock.Advance(time.Hour)
			if w.Clock.Now().After(end) {
				fmt.Println("simulation window complete; feed remains available (Ctrl-C to exit)")
				ticker.Stop()
			}
		case <-stop:
			fmt.Println("shutting down")
			srv.Close()
			w.Stop()
			return
		}
	}
}
