// Command feedserver exposes the public newly-registered-domain feed
// (the paper's released zonestream service): it runs a simulated world in
// real time, pipes the DarkDNS pipeline's detections into a topic, and
// serves that topic over TCP as JSON lines.
//
// Connect with:
//
//	nc localhost 7543
//	SUBSCRIBE FROM 0    (framed session protocol; HELLO <tenant> first to name a tenant)
//	LIVE                (legacy shim; or: FROM 0 to replay from the beginning)
//
// Usage:
//
//	feedserver [-listen 127.0.0.1:7543] [-scale 0.0005] [-tick 500ms]
//	           [-queue-bound 1024] [-shed-policy drop-oldest] [-heartbeat 1s]
//	           [-tenant-max-subs 0] [-tenant-rate 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"darkdns/internal/core"
	"darkdns/internal/feed"
	"darkdns/internal/measure"
	"darkdns/internal/psl"
	"darkdns/internal/stream"
	"darkdns/internal/worldsim"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7543", "feed listen address")
	scale := flag.Float64("scale", 0.0005, "fraction of paper volume to simulate")
	tick := flag.Duration("tick", 500*time.Millisecond, "wall-clock interval per simulated hour")
	seed := flag.Int64("seed", 1, "world seed")
	ingestWorkers := flag.Int("ingest-workers", 0, "pipeline ingest mode: 0 = per-event, ≥1 = micro-batched with this screening pool width")
	queueBound := flag.Int("queue-bound", 1024, "per-subscriber queue bound before the shed policy applies")
	shedPolicy := flag.String("shed-policy", "drop-oldest", "slow-subscriber policy: drop-oldest (GAP frames) or disconnect")
	heartbeat := flag.Duration("heartbeat", time.Second, "idle heartbeat interval on framed sessions")
	tenantMaxSubs := flag.Int("tenant-max-subs", 0, "max concurrent subscribers per tenant (0 = unlimited)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant delivery rate in entries/s (0 = unlimited)")
	flag.Parse()

	policy, err := feed.ParseShedPolicy(*shedPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "feedserver:", err)
		os.Exit(1)
	}

	w := worldsim.New(worldsim.DefaultConfig(*seed, *scale))
	start, end := w.Window()
	bus := stream.NewBus()
	fleetCfg := measure.DefaultConfig()
	fleetCfg.StopWhenDead = true
	fleet := measure.NewFleet(fleetCfg, w.Clock, w.ProbeBackend())
	pcfg := core.DefaultConfig(start, end)
	pcfg.IngestWorkers = *ingestWorkers
	p := core.New(pcfg, w.Clock, psl.Default(), w.CZDS,
		core.MuxQuerier{Mux: w.RDAP}, fleet, bus, *seed+100)
	if *ingestWorkers > 0 {
		p.StartBatched(w.Hub)
	} else {
		p.Start(w.Hub)
	}

	srv := feed.NewServerConfig(bus.Topic("nrd-feed"), feed.ServerConfig{
		QueueBound:           *queueBound,
		ShedPolicy:           policy,
		Heartbeat:            *heartbeat,
		TenantMaxSubscribers: *tenantMaxSubs,
		TenantRate:           *tenantRate,
	})
	addr, err := srv.Serve(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "feedserver:", err)
		os.Exit(1)
	}
	fmt.Printf("feed listening on %s (send SUBSCRIBE [FROM <offset>], or legacy LIVE / FROM <offset>)\n", addr)
	fmt.Printf("simulating %s → %s, one hour per %v\n", start.Format("2006-01-02"), end.Format("2006-01-02"), *tick)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.Clock.Advance(time.Hour)
			if w.Clock.Now().After(end) {
				fmt.Println("simulation window complete; feed remains available (Ctrl-C to exit)")
				ticker.Stop()
			}
		case <-stop:
			fmt.Println("shutting down")
			srv.Close()
			st := srv.Stats()
			fmt.Printf("served %d sessions (%d legacy): %d entries in %d batches, %d bytes, %d shed, %d gaps, %d encode drops, %d encode cache hits\n",
				st.Sessions, st.LegacySessions, st.Delivered, st.Batches, st.BytesOut, st.Shed, st.Gaps, st.EncodeDrops, st.EncodeCacheHits)
			w.Stop()
			return
		}
	}
}
