// Command zonediff streams the difference between two TLD zone-file
// snapshots in O(1) memory — the operation behind Table 1's "Zone NRD"
// baseline. It prints one line per difference: added/removed/changed and
// the domain.
//
// Usage:
//
//	zonediff -tld com old.zone new.zone
package main

import (
	"flag"
	"fmt"
	"os"

	"darkdns/internal/zoneset"
)

func main() {
	tld := flag.String("tld", "", "zone apex (e.g. com)")
	quiet := flag.Bool("q", false, "print only the summary")
	flag.Parse()
	if *tld == "" || flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: zonediff -tld <tld> <old.zone> <new.zone>")
		os.Exit(2)
	}
	oldF, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer oldF.Close()
	newF, err := os.Open(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	defer newF.Close()

	var added, removed, changed int64
	err = zoneset.StreamDiff(oldF, newF, *tld, func(kind zoneset.DiffKind, domain string) {
		switch kind {
		case zoneset.DiffAdded:
			added++
		case zoneset.DiffRemoved:
			removed++
		case zoneset.DiffChanged:
			changed++
		}
		if !*quiet {
			fmt.Printf("%s\t%s\n", kind, domain)
		}
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "added=%d removed=%d changed=%d\n", added, removed, changed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zonediff:", err)
	os.Exit(1)
}
