// Command sweep runs a seed × scale × policy campaign grid through the
// multi-world sweep engine: each distinct (seed, scale) world compiles
// exactly once and persists as a columnar snapshot, then every cell's
// campaign rebuilds from the shared snapshot under its own policy
// (probe cadence, lookahead window, watch sampling). Results land in one
// self-describing columnar table for longitudinal comparison.
//
// Usage:
//
//	sweep [-seeds 1,2,3] [-scales 0.001,0.002] [-weeks 2] \
//	      [-cadences 10m,2m] [-lookaheads 0,8] [-watch-samples 1.0] \
//	      [-snapshot-dir /tmp/worlds] [-sweep-workers 4] [-out sweep.dcol]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"darkdns/internal/analysis"
	"darkdns/internal/worldsim"
)

func main() {
	seeds := flag.String("seeds", "1", "comma-separated world seeds")
	scales := flag.String("scales", "0.001", "comma-separated world scales (fraction of paper volume)")
	weeks := flag.Int("weeks", 2, "observation window length in weeks, applied to every cell")
	cadences := flag.String("cadences", "10m", "comma-separated fleet revalidation cadences, one policy per value")
	lookaheads := flag.String("lookaheads", "0", "comma-separated lookahead windows, crossed with -cadences into policies")
	watchSamples := flag.String("watch-samples", "1.0", "comma-separated watch sampling rates (shed policy), crossed into policies")
	snapshotDir := flag.String("snapshot-dir", "", "directory for persistent world snapshots (empty = fresh temp dir)")
	sweepWorkers := flag.Int("sweep-workers", 4, "campaign fan-out width across grid cells (≤1 = serial)")
	buildWorkers := flag.Int("build-workers", 8, "compile fan-out width inside each world build")
	out := flag.String("out", "", "write the columnar result table to this file")
	flag.Parse()

	grid := analysis.SweepConfig{
		Weeks:       *weeks,
		SnapshotDir: *snapshotDir,
		Workers:     *sweepWorkers,
		Base: analysis.RunConfig{
			WatchSampleRate: 1.0, ProbeMail: true,
			BuildWorkers: *buildWorkers, CommitWorkers: *buildWorkers,
		},
	}
	var err error
	if grid.Seeds, err = parseInts(*seeds); err != nil {
		fatal("-seeds: %v", err)
	}
	if grid.Scales, err = parseFloats(*scales); err != nil {
		fatal("-scales: %v", err)
	}
	if grid.Policies, err = buildPolicies(*cadences, *lookaheads, *watchSamples); err != nil {
		fatal("policies: %v", err)
	}

	nCells := len(grid.Seeds) * len(grid.Scales) * len(grid.Policies)
	fmt.Fprintf(os.Stderr, "sweep: %d seeds × %d scales × %d policies = %d cells (%d distinct worlds)\n",
		len(grid.Seeds), len(grid.Scales), len(grid.Policies), nCells, len(grid.Seeds)*len(grid.Scales))
	start := time.Now()
	res, err := analysis.Sweep(grid)
	if err != nil {
		fatal("sweep: %v", err)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells in %v; compiled %d worlds (%d compile fan-outs, %d snapshot loads this process), snapshots in %s\n",
		len(res.Cells), time.Since(start).Round(time.Millisecond), res.DistinctWorlds,
		worldsim.CompileCount(), worldsim.SnapshotLoadCount(), res.SnapshotDir)

	fmt.Printf("%-6s %-9s %-24s %9s %8s %10s %8s %8s %10s %10s\n",
		"seed", "scale", "policy", "domains", "nrds", "transients", "w15m", "w45m", "median", "elapsed")
	for _, sr := range res.Cells {
		fmt.Printf("%-6d %-9g %-24s %9d %8d %10d %7.1f%% %7.1f%% %10v %10v\n",
			sr.Cell.Seed, sr.Cell.Scale, sr.Cell.Policy.Label(),
			sr.Domains, sr.NRDs, sr.Transients,
			100*sr.Within15m, 100*sr.Within45m,
			sr.MedianDelay.Round(time.Second), sr.Elapsed.Round(time.Millisecond))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("out: %v", err)
		}
		defer f.Close()
		if err := analysis.WriteSweep(f, res); err != nil {
			fatal("out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d result rows to %s (columnar)\n", len(res.Cells), *out)
	}
}

// buildPolicies crosses the three policy axes into named SweepPolicies.
func buildPolicies(cadences, lookaheads, watchSamples string) ([]analysis.SweepPolicy, error) {
	cads, err := parseDurations(cadences)
	if err != nil {
		return nil, err
	}
	las, err := parseInts(lookaheads)
	if err != nil {
		return nil, err
	}
	wss, err := parseFloats(watchSamples)
	if err != nil {
		return nil, err
	}
	var out []analysis.SweepPolicy
	for _, c := range cads {
		for _, la := range las {
			for _, ws := range wss {
				out = append(out, analysis.SweepPolicy{
					ProbeCadence: c, LookaheadWindow: int(la), WatchSampleRate: ws,
				})
			}
		}
	}
	return out, nil
}

func parseInts(s string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, f := range strings.Split(s, ",") {
		v, err := time.ParseDuration(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
