package darkdns

import (
	"context"

	"darkdns/internal/rdap"
)

// nullQuerier satisfies rdap.Querier for ingest benchmarks where RDAP
// outcomes are irrelevant.
type nullQuerier struct{}

// Domain implements rdap.Querier.
func (nullQuerier) Domain(_ context.Context, _ string) (*rdap.Record, error) {
	return nil, rdap.ErrNotFound
}
